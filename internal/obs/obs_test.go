package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestLabelsString(t *testing.T) {
	if got := (Labels{}).String(); got != "" {
		t.Fatalf("empty labels = %q", got)
	}
	l := Labels{Sub: "hv", VM: "fg", CPU: "fg/v0", Kind: "running"}
	want := `{sub="hv",vm="fg",cpu="fg/v0",kind="running"}`
	if got := l.String(); got != want {
		t.Fatalf("labels = %q, want %q", got, want)
	}
	if got := (Labels{VM: "fg"}).String(); got != `{vm="fg"}` {
		t.Fatalf("partial labels = %q", got)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", Labels{})
	g := r.Gauge("y", Labels{})
	h := r.Histogram("z", Labels{})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// Every mutating/reading method must be a no-op on nil handles: this
	// is the contract that lets scheduler hot paths skip guards.
	c.Inc()
	c.Add(5)
	c.AddTime(sim.Second)
	g.Set(1.5)
	h.Observe(sim.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		h.Mean() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if qs := h.Quantiles(50, 99); len(qs) != 2 || qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("nil histogram quantiles = %v", qs)
	}
	r.GaugeFunc("f", Labels{}, func() float64 { return 1 })
	if r.Len() != 0 {
		t.Fatal("nil registry Len must be 0")
	}
	if r.FindCounter("x", Labels{}) != nil || r.FindHistogram("z", Labels{}) != nil {
		t.Fatal("nil registry Find* must return nil")
	}
	var s *Sampler
	s.Start(sim.NewEngine())
	s.Sample()
	if s.AllSeries() != nil || s.SeriesByName("x", Labels{}) != nil {
		t.Fatal("nil sampler must be inert")
	}
}

func TestRegistryIdentityAndValues(t *testing.T) {
	r := NewRegistry()
	l := Labels{Sub: "hv", VM: "fg"}
	c := r.Counter("events_total", l)
	c.Inc()
	c.Add(2)
	if c2 := r.Counter("events_total", l); c2 != c {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name, different labels: a distinct instance.
	other := r.Counter("events_total", Labels{Sub: "hv", VM: "bg"})
	if other == c || other.Value() != 0 {
		t.Fatal("different labels must yield a fresh counter")
	}

	g := r.Gauge("load", l)
	g.Set(2.5)
	if r.Gauge("load", l).Value() != 2.5 {
		t.Fatal("gauge identity broken")
	}

	h := r.Histogram("wait_ns", l)
	for _, v := range []sim.Time{30, 10, 20} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 60 || h.Mean() != 20 || h.Max() != 30 {
		t.Fatalf("histogram stats: count=%d sum=%d mean=%d max=%d",
			h.Count(), h.Sum(), h.Mean(), h.Max())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.FindCounter("events_total", l) != c || r.FindHistogram("wait_ns", l) != h {
		t.Fatal("Find* must return the registered instance")
	}
	if r.FindCounter("missing", l) != nil || r.FindHistogram("events_total", l) != nil {
		t.Fatal("Find* must not register and must check kind")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", Labels{})
	r.Gauge("m", Labels{})
}

func TestVisitDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", Labels{VM: "z"}).Inc()
	r.Counter("b_total", Labels{VM: "a"}).Inc()
	r.Gauge("a_gauge", Labels{}).Set(1)
	r.GaugeFunc("c_fn", Labels{}, func() float64 { return 7 })
	var got []string
	r.Visit(func(name string, l Labels, c *Counter, g *Gauge, h *Histogram, sk *Sketch) {
		got = append(got, name+l.String())
		if name == "c_fn" && g.Value() != 7 {
			t.Fatalf("polled gauge = %v", g.Value())
		}
	})
	want := []string{"a_gauge", `b_total{vm="a"}`, `b_total{vm="z"}`, "c_fn"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("visit order = %v, want %v", got, want)
	}
}

func TestSamplerWithEngine(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total", Labels{Sub: "hv"})
	eng := sim.NewEngine()
	eng.Every(sim.Millisecond, "tick", func() { c.Inc() })

	s := NewSampler(r, 10*sim.Millisecond)
	s.Start(eng)
	if err := eng.Run(35 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Samples() != 3 {
		t.Fatalf("samples = %d, want 3 (t=10,20,30ms)", s.Samples())
	}
	se := s.SeriesByName("ticks_total", Labels{Sub: "hv"})
	if se == nil || len(se.Points) != 3 {
		t.Fatalf("series = %+v", se)
	}
	// Each snapshot is stamped with virtual time and the value then.
	if se.Points[0].At != 10*sim.Millisecond || se.Points[2].At != 30*sim.Millisecond {
		t.Fatalf("point times = %v, %v", se.Points[0].At, se.Points[2].At)
	}
	if se.Points[0].V >= se.Points[2].V {
		t.Fatalf("counter series should grow: %v vs %v", se.Points[0].V, se.Points[2].V)
	}
}

func TestSamplerHistogramDerivedSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait_ns", Labels{VM: "fg"})
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i))
	}
	s := NewSampler(r, sim.Millisecond)
	s.Sample()
	for _, field := range []string{".count", ".mean", ".p95", ".max"} {
		se := s.SeriesByName("wait_ns"+field, Labels{VM: "fg"})
		if se == nil || len(se.Points) != 1 {
			t.Fatalf("missing derived series %q", field)
		}
	}
	if v := s.SeriesByName("wait_ns.p95", Labels{VM: "fg"}).Points[0].V; v != 95 {
		t.Fatalf("p95 snapshot = %v", v)
	}
}

func TestNewSamplerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil registry": func() { NewSampler(nil, sim.Second) },
		"zero cadence": func() { NewSampler(NewRegistry(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewSampler should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWritePrometheusFormatAndDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("sa_sent_total", Labels{Sub: "hv", VM: "fg"}).Add(7)
		r.Gauge("rt_avg", Labels{Sub: "guest"}).Set(0.5)
		h := r.Histogram("ack_ns", Labels{VM: "fg"})
		for i := 1; i <= 10; i++ {
			h.Observe(sim.Time(i) * sim.Microsecond)
		}
		return r
	}
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, build()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Prometheus export must be byte-identical across runs")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE sa_sent_total counter",
		`sa_sent_total{sub="hv",vm="fg"} 7`,
		"# TYPE rt_avg gauge",
		`rt_avg{sub="guest"} 0.5`,
		"# TYPE ack_ns summary",
		`ack_ns{vm="fg",quantile="0.95"} 10000`,
		`ack_ns_sum{vm="fg"} 55000`,
		`ack_ns_count{vm="fg"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", Labels{VM: "fg"})
	s := NewSampler(r, sim.Millisecond)
	c.Inc()
	s.Sample()
	c.Inc()
	s.Sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 points:\n%s", len(lines), buf.String())
	}
	if lines[0] != "metric,labels,t_ns,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "x_total,") || !strings.HasSuffix(lines[1], ",1") {
		t.Fatalf("first point = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",2") {
		t.Fatalf("second point = %q", lines[2])
	}
}

func TestHistogramLine(t *testing.T) {
	if got := HistogramLine(nil); got != "n=0" {
		t.Fatalf("nil histogram line = %q", got)
	}
	r := NewRegistry()
	h := r.Histogram("w", Labels{})
	h.Observe(30 * sim.Millisecond)
	line := HistogramLine(h)
	if !strings.Contains(line, "n=1") || !strings.Contains(line, "30.000ms") {
		t.Fatalf("histogram line = %q", line)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	log := trace.NewLog(0)
	log.Record(1*sim.Millisecond, trace.KindVCPUState, "fg/v0", "blocked -> runnable")
	log.Record(2*sim.Millisecond, trace.KindVCPUState, "fg/v0", "runnable -> running")
	log.Record(3*sim.Millisecond, trace.KindSA, "fg/v0", "sent")
	log.Record(5*sim.Millisecond, trace.KindVCPUState, "fg/v0", "running -> blocked")
	log.Record(20*sim.Millisecond, trace.KindNote, "outside", "beyond window")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, log, 0, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  int      `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var begins, ends, instants, metas int
	for _, e := range out.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Ts == nil || e.Pid == 0 || e.Tid == nil {
			t.Fatalf("event missing required fields: %+v", e)
		}
		if e.Name == "outside" {
			t.Fatal("event beyond the window leaked into the export")
		}
		switch e.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	// runnable B/E + running B/E from the three transitions.
	if begins != 2 || ends != 2 {
		t.Fatalf("B/E = %d/%d, want 2/2", begins, ends)
	}
	if instants != 1 {
		t.Fatalf("instants = %d, want 1 (the SA event)", instants)
	}
	if metas < 2 {
		t.Fatalf("metadata events = %d, want process_name + thread_name", metas)
	}
}

func TestWriteChromeTraceClosesOpenSlice(t *testing.T) {
	log := trace.NewLog(0)
	log.Record(1*sim.Millisecond, trace.KindVCPUState, "fg/v0", "runnable -> running")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, log, 0, 4*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var sawEnd bool
	for _, e := range out.TraceEvents {
		if e.Ph == "E" {
			sawEnd = true
			if e.Ts != 4000 { // 4 ms window edge, in µs
				t.Fatalf("close ts = %v µs, want 4000", e.Ts)
			}
		}
	}
	if !sawEnd {
		t.Fatal("slice still open at window end must be closed")
	}
}
