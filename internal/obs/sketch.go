package obs

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Sketch is a DDSketch-style streaming quantile sketch over sim.Time
// values: logarithmically-spaced buckets sized so every quantile
// estimate is within a bounded *relative* error of the true value,
// regardless of how many samples stream through. Unlike the sampling
// Reservoir in internal/metrics, a sketch never discards information
// it needs — and two sketches merge exactly (bucket-wise counter
// addition), so per-worker sketches built in parallel combine into the
// same result in any merge order. That keeps tail breakdowns honest
// under the parallel experiment harness.
type Sketch struct {
	alpha    float64
	gamma    float64 // (1+alpha)/(1-alpha)
	logGamma float64

	counts map[int]int64 // bucket index -> count
	zero   int64         // values <= 0 (exact)
	n      int64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

// DefaultSketchAlpha is the relative-error bound used when callers do
// not pick one: estimates are within 1% of the true quantile value.
const DefaultSketchAlpha = 0.01

// NewSketch returns an empty sketch with relative-error bound alpha
// (0 < alpha < 1). Non-positive alpha falls back to
// DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		logGamma: math.Log(gamma),
		counts:   make(map[int]int64),
	}
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// bucket returns the index i such that gamma^(i-1) < v <= gamma^i.
func (s *Sketch) bucket(v sim.Time) int {
	return int(math.Ceil(math.Log(float64(v)) / s.logGamma))
}

// estimate returns the representative value of bucket i: the midpoint
// 2*gamma^i/(gamma+1), which bounds the relative error at alpha.
func (s *Sketch) estimate(i int) sim.Time {
	return sim.Time(math.Round(2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)))
}

// Add records one value. Non-positive values land in an exact zero
// bucket (durations are never negative; zero is common for idle
// categories).
func (s *Sketch) Add(v sim.Time) {
	s.n++
	s.sum += v
	if s.n == 1 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= 0 {
		s.zero++
		return
	}
	s.counts[s.bucket(v)]++
}

// Count returns how many values were added.
func (s *Sketch) Count() int64 { return s.n }

// Sum returns the exact sum of all added values (sums, like bucket
// counts, merge exactly).
func (s *Sketch) Sum() sim.Time { return s.sum }

// Min and Max return the exact extremes of the stream.
func (s *Sketch) Min() sim.Time { return s.min }
func (s *Sketch) Max() sim.Time { return s.max }

// Merge folds o into s. Both sketches must share the same alpha (the
// bucket layouts are incompatible otherwise); merging is exact —
// bucket-wise integer addition — hence associative and commutative.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic("obs: merging sketches with different alpha")
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.zero += o.zero
	for i, c := range o.counts {
		s.counts[i] += c
	}
}

// Percentile returns the nearest-rank p-th percentile estimate
// (p in [0,100]), mirroring metrics.Reservoir.Percentile. The returned
// value is within a factor (1±alpha) of the true order statistic.
func (s *Sketch) Percentile(p float64) sim.Time {
	if s.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if rank <= s.zero {
		return 0
	}
	cum := s.zero
	keys := make([]int, 0, len(s.counts))
	for i := range s.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		cum += s.counts[i]
		if cum >= rank {
			return s.estimate(i)
		}
	}
	return s.max
}
