package topology

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// LoadSpec is the declarative cluster-load specification driving the
// scale experiment and cmd/irsload — this repo's clusterloader2: one
// text blob describes the rack shape, the scheduling stack, the
// request load curve (flat, staged ramp, or diurnal), the tenant mix,
// injected zone outages, the burn-rate alert rule, and the replica
// autoscaler. Specs parse from strings (ParseLoadSpec) in the same
// section:key=value idiom as fault.ParsePlan and workload.ParseAttack,
// round-trip through String, and validate strictly, so a spec can live
// in a Makefile line, a CI job, or a file without drifting from what
// the simulator actually runs.
//
// Syntax: sections separated by ';' or newlines, each
// "name:key=value,...". '#' starts a line comment. Example:
//
//	topo:zones=2,hosts=8,pcpus=4
//	sched:policy=ia,strategy=irs,migrate=on
//	load:arrival=1ms,service=2ms,slo=25ms,duration=12s,drain=2s
//	ramp:1500us@0,1ms@2s,800us@4s
//	tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=500ms
//	outage:zone=1,at=6s,for=1200ms
//	alert:budget=0.02,fast=500ms,slow=2s,burn=3
//	autoscale:max=8,step=2,cooldown=1500ms,down-after=2500ms
type LoadSpec struct {
	// Zones × HostsPerZone hosts of PCPUs pCPUs each (topo section).
	Zones, HostsPerZone, PCPUs int

	// Policy is the placement policy ("first-fit", "least-loaded",
	// "ia"); Strategy the per-host hypervisor strategy ("vanilla",
	// "ple", "relaxed-co", "irs"); Migrate enables hot-spot live
	// migration (sched section).
	Policy, Strategy string
	Overcommit       float64
	Migrate          bool

	// Arrival is the mean request inter-arrival time (the flat rate,
	// and the base rate the diurnal curve modulates); Service the mean
	// service time; SLO the latency bound; Duration the stream length;
	// Drain the extra settle time (load section).
	Arrival, Service, SLO sim.Time
	Duration, Drain       sim.Time

	// Ramp is an explicit piecewise arrival schedule (ramp section):
	// stage k's mean inter-arrival applies from its At until the next
	// stage. Mutually exclusive with Diurnal.
	Ramp []Stage
	// Diurnal modulates the base Arrival rate sinusoidally (diurnal
	// section) — the compressed millions-of-users day/night curve.
	Diurnal *DiurnalSpec

	// Tenant mix, per zone (tenants section): ServersPerZone server
	// VMs (ServerVCPUs wide, ServerThreads workers, 0 = vCPU count)
	// and AntsPerZone antagonist VMs (AntVCPUs wide), arriving
	// alternately Spacing apart.
	ServersPerZone, ServerVCPUs, ServerThreads int
	AntsPerZone, AntVCPUs                      int
	Spacing                                    sim.Time

	// Outages are injected zone failures (outage sections, repeatable):
	// at At the zone is cordoned and its hosts go dark for For.
	Outages []OutageSpec

	// Alert is the burn-rate rule the SLO watchdog evaluates (alert
	// section); required when Autoscale is set.
	Alert *AlertSpec
	// Autoscale bounds the replica autoscaler (autoscale section).
	Autoscale *AutoscaleSpec
}

// Stage is one step of a piecewise arrival schedule: mean inter-arrival
// Arrival from time At on.
type Stage struct {
	Arrival sim.Time
	At      sim.Time
}

// DiurnalSpec modulates the arrival rate as 1 + Swing·sin(2πt/Period),
// discretized into Steps flat stages per period.
type DiurnalSpec struct {
	Period sim.Time
	Swing  float64
	Steps  int
}

// OutageSpec is one injected zone failure.
type OutageSpec struct {
	Zone    int
	At, For sim.Time
}

// AlertSpec is the burn-rate rule in watch.Rule shape.
type AlertSpec struct {
	Budget     float64
	Fast, Slow sim.Time
	Burn       float64
}

// AutoscaleSpec bounds the replica autoscaler. Min 0 means "the
// initial server count"; Max must fit at least Min.
type AutoscaleSpec struct {
	Min, Max, Step      int
	Cooldown, DownAfter sim.Time
	Interval            sim.Time
}

// Default knobs applied by withDefaults for omitted fields.
const (
	DefaultSpacing  = 500 * sim.Millisecond
	DefaultDuration = 10 * sim.Second
	DefaultDrain    = 2 * sim.Second
)

// withDefaults fills unset fields with the documented defaults.
func (s LoadSpec) withDefaults() LoadSpec {
	if s.Zones == 0 {
		s.Zones = 1
	}
	if s.HostsPerZone == 0 {
		s.HostsPerZone = 4
	}
	if s.PCPUs == 0 {
		s.PCPUs = 4
	}
	if s.Policy == "" {
		s.Policy = "ia"
	}
	if s.Strategy == "" {
		s.Strategy = "irs"
	}
	if s.Overcommit == 0 {
		s.Overcommit = 1.5
	}
	if s.Arrival == 0 {
		s.Arrival = 1250 * sim.Microsecond
	}
	if s.Service == 0 {
		s.Service = 2 * sim.Millisecond
	}
	if s.SLO == 0 {
		s.SLO = 25 * sim.Millisecond
	}
	if s.Duration == 0 {
		s.Duration = DefaultDuration
	}
	if s.Drain == 0 {
		s.Drain = DefaultDrain
	}
	if s.ServersPerZone == 0 {
		s.ServersPerZone = 2
	}
	if s.ServerVCPUs == 0 {
		s.ServerVCPUs = 2
	}
	if s.AntVCPUs == 0 {
		s.AntVCPUs = 2
	}
	if s.Spacing == 0 {
		s.Spacing = DefaultSpacing
	}
	if d := s.Diurnal; d != nil {
		cp := *d
		if cp.Steps == 0 {
			cp.Steps = 8
		}
		s.Diurnal = &cp
	}
	if a := s.Alert; a != nil {
		cp := *a
		if cp.Budget == 0 {
			cp.Budget = 0.02
		}
		if cp.Fast == 0 {
			cp.Fast = 500 * sim.Millisecond
		}
		if cp.Slow == 0 {
			cp.Slow = 2 * sim.Second
		}
		if cp.Burn == 0 {
			cp.Burn = 3
		}
		s.Alert = &cp
	}
	if as := s.Autoscale; as != nil {
		cp := *as
		if cp.Step == 0 {
			cp.Step = 1
		}
		if cp.Cooldown == 0 {
			cp.Cooldown = 2 * sim.Second
		}
		if cp.DownAfter == 0 {
			cp.DownAfter = 3 * sim.Second
		}
		if cp.Interval == 0 {
			cp.Interval = 250 * sim.Millisecond
		}
		if cp.Max == 0 {
			cp.Max = s.Zones*s.ServersPerZone + cp.Step
		}
		s.Autoscale = &cp
	}
	return s
}

// policies and strategies a spec may name (validated here so a bad
// spec fails at parse time, not deep inside cluster construction).
var (
	specPolicies   = []string{"first-fit", "least-loaded", "ia"}
	specStrategies = []string{"vanilla", "ple", "relaxed-co", "irs"}
)

func oneOf(v string, allowed []string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// Validate rejects incoherent specs: impossible shapes, out-of-range
// knobs, outages aimed at zones that do not exist, ramps that go
// backwards, or an autoscaler with no alert rule to react to.
func (s LoadSpec) Validate() error {
	if s.Zones <= 0 || s.HostsPerZone <= 0 || s.PCPUs <= 0 {
		return fmt.Errorf("topology: spec needs positive zones×hosts×pcpus (got %d×%d×%d)", s.Zones, s.HostsPerZone, s.PCPUs)
	}
	if !oneOf(s.Policy, specPolicies) {
		return fmt.Errorf("topology: spec policy %q not in %v", s.Policy, specPolicies)
	}
	if !oneOf(s.Strategy, specStrategies) {
		return fmt.Errorf("topology: spec strategy %q not in %v", s.Strategy, specStrategies)
	}
	if !(s.Overcommit > 0) || math.IsInf(s.Overcommit, 0) {
		return fmt.Errorf("topology: spec overcommit %v not a positive finite number", s.Overcommit)
	}
	if s.Arrival <= 0 || s.Service <= 0 || s.SLO <= 0 || s.Duration <= 0 || s.Drain < 0 {
		return fmt.Errorf("topology: spec load durations must be positive (arrival=%v service=%v slo=%v duration=%v drain=%v)",
			s.Arrival, s.Service, s.SLO, s.Duration, s.Drain)
	}
	if len(s.Ramp) > 0 && s.Diurnal != nil {
		return fmt.Errorf("topology: spec has both ramp and diurnal sections")
	}
	for i, st := range s.Ramp {
		if st.Arrival <= 0 {
			return fmt.Errorf("topology: ramp stage %d arrival %v not positive", i, st.Arrival)
		}
		if st.At < 0 {
			return fmt.Errorf("topology: ramp stage %d at %v negative", i, st.At)
		}
		if i > 0 && st.At <= s.Ramp[i-1].At {
			return fmt.Errorf("topology: ramp stage %d at %v does not advance past %v", i, st.At, s.Ramp[i-1].At)
		}
	}
	if d := s.Diurnal; d != nil {
		if d.Period <= 0 {
			return fmt.Errorf("topology: diurnal period %v not positive", d.Period)
		}
		if !(d.Swing >= 0 && d.Swing < 1) {
			return fmt.Errorf("topology: diurnal swing %v outside [0, 1)", d.Swing)
		}
		if d.Steps < 2 {
			return fmt.Errorf("topology: diurnal steps %d < 2", d.Steps)
		}
	}
	if s.ServersPerZone < 0 || s.AntsPerZone < 0 || s.ServerVCPUs <= 0 || s.AntVCPUs <= 0 || s.ServerThreads < 0 {
		return fmt.Errorf("topology: bad tenant mix (servers=%d×%d ants=%d×%d threads=%d)",
			s.ServersPerZone, s.ServerVCPUs, s.AntsPerZone, s.AntVCPUs, s.ServerThreads)
	}
	if s.ServersPerZone*s.Zones < 1 {
		return fmt.Errorf("topology: spec places no server VMs")
	}
	if s.Spacing < 0 {
		return fmt.Errorf("topology: spacing %v negative", s.Spacing)
	}
	for i, o := range s.Outages {
		if o.Zone < 0 || o.Zone >= s.Zones {
			return fmt.Errorf("topology: outage %d zone %d outside [0,%d)", i, o.Zone, s.Zones)
		}
		if o.At < 0 || o.For <= 0 {
			return fmt.Errorf("topology: outage %d needs at >= 0 and for > 0 (got at=%v for=%v)", i, o.At, o.For)
		}
	}
	if a := s.Alert; a != nil {
		if !(a.Budget > 0 && a.Budget < 1) {
			return fmt.Errorf("topology: alert budget %v outside (0, 1)", a.Budget)
		}
		if a.Fast <= 0 || a.Slow < a.Fast {
			return fmt.Errorf("topology: alert windows fast=%v slow=%v incoherent", a.Fast, a.Slow)
		}
		if !(a.Burn > 0) || math.IsInf(a.Burn, 0) {
			return fmt.Errorf("topology: alert burn %v not a positive finite number", a.Burn)
		}
	}
	if as := s.Autoscale; as != nil {
		if s.Alert == nil {
			return fmt.Errorf("topology: autoscale section needs an alert section (the burn-rate signal it reacts to)")
		}
		if as.Min < 0 || as.Step <= 0 {
			return fmt.Errorf("topology: autoscale min %d / step %d out of range", as.Min, as.Step)
		}
		base := as.Min
		if base == 0 {
			base = s.ServersPerZone * s.Zones
		}
		if as.Max < base {
			return fmt.Errorf("topology: autoscale max %d below floor %d", as.Max, base)
		}
		if as.Cooldown <= 0 || as.DownAfter <= 0 || as.Interval <= 0 {
			return fmt.Errorf("topology: autoscale timers must be positive (cooldown=%v down-after=%v interval=%v)",
				as.Cooldown, as.DownAfter, as.Interval)
		}
	}
	return nil
}

// Topology materializes the spec's rack shape.
func (s LoadSpec) Topology() *Topology { return Uniform(s.Zones, s.HostsPerZone) }

// Stages returns the effective piecewise arrival schedule: the
// explicit ramp when given, the discretized diurnal curve when
// configured, or nil for a flat stream at Arrival. The diurnal rate at
// stage k is base_rate × (1 + Swing·sin(2πk/Steps)), so the mean
// inter-arrival is Arrival / (1 + Swing·sin(·)); stages repeat for the
// whole Duration.
func (s LoadSpec) Stages() []Stage {
	if len(s.Ramp) > 0 {
		return s.Ramp
	}
	d := s.Diurnal
	if d == nil || d.Swing == 0 {
		return nil
	}
	step := d.Period / sim.Time(d.Steps)
	if step <= 0 {
		step = 1
	}
	var out []Stage
	for at, k := sim.Time(0), 0; at < s.Duration; at, k = at+step, k+1 {
		mod := 1 + d.Swing*math.Sin(2*math.Pi*float64(k%d.Steps)/float64(d.Steps))
		arr := sim.Time(float64(s.Arrival) / mod)
		if arr < 1 {
			arr = 1
		}
		out = append(out, Stage{Arrival: arr, At: at})
	}
	return out
}

// fmtDur renders a sim.Time in the Go duration syntax ParseLoadSpec
// reads back.
func fmtDur(t sim.Time) string { return time.Duration(t).String() }

func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// String renders the spec in the exact syntax ParseLoadSpec accepts,
// with every field explicit; ParseLoadSpec(s.String()) round-trips to
// an equal spec.
func (s LoadSpec) String() string {
	s = s.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "topo:zones=%d,hosts=%d,pcpus=%d", s.Zones, s.HostsPerZone, s.PCPUs)
	fmt.Fprintf(&b, "; sched:policy=%s,strategy=%s,overcommit=%s,migrate=%s",
		s.Policy, s.Strategy, fmtFloat(s.Overcommit), onOff(s.Migrate))
	fmt.Fprintf(&b, "; load:arrival=%s,service=%s,slo=%s,duration=%s,drain=%s",
		fmtDur(s.Arrival), fmtDur(s.Service), fmtDur(s.SLO), fmtDur(s.Duration), fmtDur(s.Drain))
	if len(s.Ramp) > 0 {
		parts := make([]string, len(s.Ramp))
		for i, st := range s.Ramp {
			parts[i] = fmtDur(st.Arrival) + "@" + fmtDur(st.At)
		}
		fmt.Fprintf(&b, "; ramp:%s", strings.Join(parts, ","))
	}
	if d := s.Diurnal; d != nil {
		fmt.Fprintf(&b, "; diurnal:period=%s,swing=%s,steps=%d", fmtDur(d.Period), fmtFloat(d.Swing), d.Steps)
	}
	fmt.Fprintf(&b, "; tenants:servers=%d,server-vcpus=%d,server-threads=%d,ants=%d,ant-vcpus=%d,spacing=%s",
		s.ServersPerZone, s.ServerVCPUs, s.ServerThreads, s.AntsPerZone, s.AntVCPUs, fmtDur(s.Spacing))
	for _, o := range s.Outages {
		fmt.Fprintf(&b, "; outage:zone=%d,at=%s,for=%s", o.Zone, fmtDur(o.At), fmtDur(o.For))
	}
	if a := s.Alert; a != nil {
		fmt.Fprintf(&b, "; alert:budget=%s,fast=%s,slow=%s,burn=%s",
			fmtFloat(a.Budget), fmtDur(a.Fast), fmtDur(a.Slow), fmtFloat(a.Burn))
	}
	if as := s.Autoscale; as != nil {
		fmt.Fprintf(&b, "; autoscale:min=%d,max=%d,step=%d,cooldown=%s,down-after=%s,interval=%s",
			as.Min, as.Max, as.Step, fmtDur(as.Cooldown), fmtDur(as.DownAfter), fmtDur(as.Interval))
	}
	return b.String()
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// fieldParser decodes one key=value pair into the spec under
// construction.
type fieldParser func(s *LoadSpec, key, val string) (bool, error)

// ParseLoadSpec parses a declarative cluster-load spec (see the
// LoadSpec syntax above), applies defaults to omitted fields, and
// validates the result.
func ParseLoadSpec(text string) (LoadSpec, error) {
	var s LoadSpec
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, sec := range strings.Split(line, ";") {
			sec = strings.TrimSpace(sec)
			if sec == "" {
				continue
			}
			name, rest, ok := strings.Cut(sec, ":")
			if !ok {
				return LoadSpec{}, fmt.Errorf("topology: section %q is not name:key=value,...", sec)
			}
			name = strings.ToLower(strings.TrimSpace(name))
			if name != "outage" && seen[name] {
				return LoadSpec{}, fmt.Errorf("topology: duplicate section %q", name)
			}
			seen[name] = true
			if err := parseSection(&s, name, rest); err != nil {
				return LoadSpec{}, err
			}
		}
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return LoadSpec{}, err
	}
	return s, nil
}

// parseSection dispatches one section body.
func parseSection(s *LoadSpec, name, body string) error {
	switch name {
	case "topo":
		return parseFields(s, name, body, parseTopoField)
	case "sched":
		return parseFields(s, name, body, parseSchedField)
	case "load":
		return parseFields(s, name, body, parseLoadField)
	case "ramp":
		return parseRamp(s, body)
	case "diurnal":
		s.Diurnal = &DiurnalSpec{}
		return parseFields(s, name, body, parseDiurnalField)
	case "tenants":
		return parseFields(s, name, body, parseTenantsField)
	case "outage":
		s.Outages = append(s.Outages, OutageSpec{Zone: -1})
		return parseFields(s, name, body, parseOutageField)
	case "alert":
		s.Alert = &AlertSpec{}
		return parseFields(s, name, body, parseAlertField)
	case "autoscale":
		s.Autoscale = &AutoscaleSpec{}
		return parseFields(s, name, body, parseAutoscaleField)
	default:
		return fmt.Errorf("topology: unknown section %q", name)
	}
}

// parseFields walks a comma-separated key=value list, rejecting
// duplicates and unknown keys.
func parseFields(s *LoadSpec, section, body string, fp fieldParser) error {
	seen := map[string]bool{}
	for _, field := range strings.Split(body, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return fmt.Errorf("topology: %s: empty field", section)
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("topology: %s: field %q is not key=value", section, field)
		}
		key, val = strings.ToLower(strings.TrimSpace(key)), strings.TrimSpace(val)
		if seen[key] {
			return fmt.Errorf("topology: %s: duplicate field %q", section, key)
		}
		seen[key] = true
		known, err := fp(s, key, val)
		if err != nil {
			return fmt.Errorf("topology: %s: %s: %v", section, key, err)
		}
		if !known {
			return fmt.Errorf("topology: %s: unknown field %q", section, key)
		}
	}
	return nil
}

func parseInt(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	return n, nil
}

func parseDur(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	return sim.Time(d), nil
}

func parseOnOff(val string) (bool, error) {
	switch strings.ToLower(val) {
	case "on", "true", "yes", "1":
		return true, nil
	case "off", "false", "no", "0":
		return false, nil
	}
	return false, fmt.Errorf("want on/off, got %q", val)
}

func parseTopoField(s *LoadSpec, key, val string) (bool, error) {
	n, err := parseInt(val)
	switch key {
	case "zones":
		s.Zones = n
	case "hosts":
		s.HostsPerZone = n
	case "pcpus":
		s.PCPUs = n
	default:
		return false, nil
	}
	if err == nil && n <= 0 {
		// An explicit non-positive dimension is an error, not a request
		// for the default (which withDefaults would silently apply).
		return true, fmt.Errorf("%s must be positive, got %d", key, n)
	}
	return true, err
}

func parseSchedField(s *LoadSpec, key, val string) (bool, error) {
	switch key {
	case "policy":
		s.Policy = strings.ToLower(val)
	case "strategy":
		s.Strategy = strings.ToLower(val)
	case "overcommit":
		f, err := strconv.ParseFloat(val, 64)
		s.Overcommit = f
		return true, err
	case "migrate":
		b, err := parseOnOff(val)
		s.Migrate = b
		return true, err
	default:
		return false, nil
	}
	return true, nil
}

func parseLoadField(s *LoadSpec, key, val string) (bool, error) {
	d, err := parseDur(val)
	switch key {
	case "arrival":
		s.Arrival = d
	case "service":
		s.Service = d
	case "slo":
		s.SLO = d
	case "duration":
		s.Duration = d
	case "drain":
		s.Drain = d
	default:
		return false, nil
	}
	return true, err
}

// parseRamp reads the "arrival@at,arrival@at,..." stage list.
func parseRamp(s *LoadSpec, body string) error {
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("topology: ramp: empty stage")
		}
		arrS, atS, ok := strings.Cut(part, "@")
		if !ok {
			return fmt.Errorf("topology: ramp: stage %q is not arrival@at", part)
		}
		arr, err := parseDur(strings.TrimSpace(arrS))
		if err != nil {
			return fmt.Errorf("topology: ramp: %q: %v", part, err)
		}
		at, err := parseDur(strings.TrimSpace(atS))
		if err != nil {
			return fmt.Errorf("topology: ramp: %q: %v", part, err)
		}
		s.Ramp = append(s.Ramp, Stage{Arrival: arr, At: at})
	}
	sort.SliceStable(s.Ramp, func(a, b int) bool { return s.Ramp[a].At < s.Ramp[b].At })
	return nil
}

func parseDiurnalField(s *LoadSpec, key, val string) (bool, error) {
	d := s.Diurnal
	switch key {
	case "period":
		t, err := parseDur(val)
		d.Period = t
		return true, err
	case "swing":
		f, err := strconv.ParseFloat(val, 64)
		d.Swing = f
		return true, err
	case "steps":
		n, err := parseInt(val)
		d.Steps = n
		return true, err
	}
	return false, nil
}

func parseTenantsField(s *LoadSpec, key, val string) (bool, error) {
	switch key {
	case "spacing":
		d, err := parseDur(val)
		s.Spacing = d
		return true, err
	}
	n, err := parseInt(val)
	switch key {
	case "servers":
		if err == nil && n <= 0 {
			// 0 would be indistinguishable from "defaulted" — and a
			// spec with no server VMs has nothing to route to anyway.
			return true, fmt.Errorf("spec places no server VMs (servers=%d)", n)
		}
		s.ServersPerZone = n
	case "server-vcpus":
		s.ServerVCPUs = n
	case "server-threads":
		s.ServerThreads = n
	case "ants":
		s.AntsPerZone = n
	case "ant-vcpus":
		s.AntVCPUs = n
	default:
		return false, nil
	}
	return true, err
}

func parseOutageField(s *LoadSpec, key, val string) (bool, error) {
	o := &s.Outages[len(s.Outages)-1]
	switch key {
	case "zone":
		n, err := parseInt(val)
		o.Zone = n
		return true, err
	case "at":
		d, err := parseDur(val)
		o.At = d
		return true, err
	case "for":
		d, err := parseDur(val)
		o.For = d
		return true, err
	}
	return false, nil
}

func parseAlertField(s *LoadSpec, key, val string) (bool, error) {
	a := s.Alert
	switch key {
	case "budget", "burn":
		f, err := strconv.ParseFloat(val, 64)
		if key == "budget" {
			a.Budget = f
		} else {
			a.Burn = f
		}
		return true, err
	case "fast", "slow":
		d, err := parseDur(val)
		if key == "fast" {
			a.Fast = d
		} else {
			a.Slow = d
		}
		return true, err
	}
	return false, nil
}

func parseAutoscaleField(s *LoadSpec, key, val string) (bool, error) {
	as := s.Autoscale
	switch key {
	case "min", "max", "step":
		n, err := parseInt(val)
		switch key {
		case "min":
			as.Min = n
		case "max":
			as.Max = n
		default:
			as.Step = n
		}
		return true, err
	case "cooldown", "down-after", "interval":
		d, err := parseDur(val)
		switch key {
		case "cooldown":
			as.Cooldown = d
		case "down-after":
			as.DownAfter = d
		default:
			as.Interval = d
		}
		return true, err
	}
	return false, nil
}
