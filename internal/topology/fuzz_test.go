package topology_test

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// FuzzParseLoadSpec asserts that arbitrary cluster-load specs never
// panic and that any spec ParseLoadSpec accepts is valid and survives a
// String → ParseLoadSpec round trip to a deeply equal value.
func FuzzParseLoadSpec(f *testing.F) {
	seeds := []string{
		"",
		"topo:zones=2,hosts=8,pcpus=4",
		"topo:zones=2,hosts=8,pcpus=4; sched:policy=ia,strategy=irs,migrate=on; " +
			"load:arrival=1ms,service=2ms,slo=25ms,duration=12s,drain=2s; " +
			"ramp:1500us@0,1ms@2s,800us@4s; " +
			"tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=500ms; " +
			"outage:zone=1,at=6s,for=1200ms; " +
			"alert:budget=0.02,fast=500ms,slow=2s,burn=3; " +
			"autoscale:max=8,step=2,cooldown=1500ms,down-after=2500ms",
		"load:arrival=1ms,duration=6s; diurnal:period=2s,swing=0.4,steps=8",
		"sched:policy=first-fit,strategy=vanilla,overcommit=2,migrate=off",
		"# comment\ntopo:zones=3,hosts=2\noutage:zone=0,at=1s,for=500ms\noutage:zone=2,at=2s,for=500ms",
		"TOPO: zones = 2 , hosts = 4",
		"topo:zones=2",
		"bogus:zones=2",
		"topo zones=2",
		"topo:zones=two",
		"topo:zones=2,zones=3",
		"topo:zones=-1,hosts=4",
		"ramp:1ms@0; diurnal:period=2s,swing=0.3",
		"ramp:1ms@1s,2ms@1s",
		"ramp:1ms",
		"outage:zone=9,at=1s,for=1s",
		"autoscale:max=8",
		"alert:fast=2s,slow=1s",
		"tenants:servers=0,ants=1",
		"load:arrival=9223372036854775807ns",
		"sched:overcommit=nan",
		";;;",
		"=,=,=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := topology.ParseLoadSpec(text)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseLoadSpec(%q) accepted invalid spec %+v: %v", text, s, err)
		}
		back, err := topology.ParseLoadSpec(s.String())
		if err != nil {
			t.Fatalf("ParseLoadSpec(%q) -> %q does not re-parse: %v", text, s.String(), err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip of %q: %+v != %+v (via %q)", text, back, s, s.String())
		}
		// Derived artifacts must never panic on a valid spec.
		_ = s.Topology()
		_ = s.Stages()
	})
}
