package topology

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		zones []Zone
		want  string // substring of the error; "" = valid
	}{
		{"empty", nil, "no zones"},
		{"unnamed", []Zone{{Name: "", Hosts: []int{0}}}, "empty name"},
		{"dup-name", []Zone{{Name: "a", Hosts: []int{0}}, {Name: "a", Hosts: []int{1}}}, "duplicate zone name"},
		{"hostless", []Zone{{Name: "a", Hosts: []int{0}}, {Name: "b", Hosts: nil}}, "no hosts"},
		{"out-of-range", []Zone{{Name: "a", Hosts: []int{0, 2}}}, "outside"},
		{"dup-host", []Zone{{Name: "a", Hosts: []int{0}}, {Name: "b", Hosts: []int{0}}}, "in both"},
		{"valid", []Zone{{Name: "a", Hosts: []int{1, 0}}, {Name: "b", Hosts: []int{2}}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := New(tc.zones)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if topo.Zones() != len(tc.zones) || topo.Hosts() != 3 {
					t.Fatalf("got %d zones / %d hosts", topo.Zones(), topo.Hosts())
				}
				// Host lists come back sorted regardless of input order.
				if hs := topo.Zone(0).Hosts; hs[0] != 0 || hs[1] != 1 {
					t.Fatalf("zone 0 hosts not sorted: %v", hs)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestUniformShape(t *testing.T) {
	topo := Uniform(2, 8)
	if topo.Zones() != 2 || topo.Hosts() != 16 {
		t.Fatalf("got %d zones / %d hosts", topo.Zones(), topo.Hosts())
	}
	if got := topo.String(); got != "2 zones × 8 hosts" {
		t.Fatalf("String() = %q", got)
	}
	for h := 0; h < 16; h++ {
		want := h / 8
		if topo.ZoneOf(h) != want {
			t.Fatalf("ZoneOf(%d) = %d, want %d", h, topo.ZoneOf(h), want)
		}
	}
	if name := topo.Zone(1).Name; name != "z1" {
		t.Fatalf("zone 1 name %q", name)
	}
}

func TestFlatIsSingleZone(t *testing.T) {
	topo := Flat(5)
	if topo.Zones() != 1 || topo.Hosts() != 5 || topo.ZoneOf(4) != 0 {
		t.Fatalf("Flat(5) = %v", topo)
	}
}

// TestZoneScoreScarcityGate: a newcomer's pressure harms a zone full of
// sensitive residents only once the zone's projected utilization
// crosses the 50% scarcity knee — below it, the harm term is zero and
// the busier-but-roomy zone still wins on the mild committed tiebreak.
func TestZoneScoreScarcityGate(t *testing.T) {
	quiet := ZoneStats{Hosts: 4, Committed: 4, Capacity: 24, Busy: 0.2, Sensitive: 8}
	if got := ZoneScore(quiet, 2, 1.0, false); got > 0.05*4/24+1e-9 {
		t.Fatalf("harm leaked below scarcity knee: score %v", got)
	}
	scarce := quiet
	scarce.Busy = 0.9
	lo, hi := ZoneScore(quiet, 2, 1.0, false), ZoneScore(scarce, 2, 1.0, false)
	if hi <= lo {
		t.Fatalf("scarce zone must score worse: %v <= %v", hi, lo)
	}
	// Same scarcity, fewer sensitive residents → less harm.
	sparse := scarce
	sparse.Sensitive = 1
	if ZoneScore(sparse, 2, 1.0, false) >= hi {
		t.Fatalf("fewer sensitive residents must lower the score")
	}
}

func TestZoneScoreSensitiveAvoidsInterference(t *testing.T) {
	calm := ZoneStats{Hosts: 2, Committed: 4, Capacity: 12, Busy: 0.4}
	noisy := calm
	noisy.Interference = 2.5
	if ZoneScore(noisy, 2, 0, true) <= ZoneScore(calm, 2, 0, true) {
		t.Fatal("sensitive VM must score a noisy zone worse")
	}
	// An insensitive VM does not care about interference.
	if ZoneScore(noisy, 2, 0, false) != ZoneScore(calm, 2, 0, false) {
		t.Fatal("insensitive VM must ignore interference")
	}
}

func TestZoneScoreOverfullPenalty(t *testing.T) {
	full := ZoneStats{Hosts: 2, Committed: 12, Capacity: 12, Busy: 0.5}
	if ZoneScore(full, 1, 0, false) < zoneOverfullPenalty {
		t.Fatal("placing past capacity must cost the overfull penalty")
	}
	if ZoneScore(ZoneStats{}, 1, 0, false) < zoneOverfullPenalty {
		t.Fatal("zero-capacity zone must be soft-forbidden")
	}
}

func TestPickZone(t *testing.T) {
	roomy := ZoneStats{Hosts: 4, Committed: 2, Capacity: 24, Busy: 0.1}
	busy := ZoneStats{Hosts: 4, Committed: 18, Capacity: 24, Busy: 0.9, Sensitive: 4}
	cases := []struct {
		name  string
		stats []ZoneStats
		want  int
	}{
		{"empty", nil, -1},
		{"prefers-roomy", []ZoneStats{busy, roomy}, 1},
		{"tie-breaks-low-index", []ZoneStats{roomy, roomy}, 0},
		{"skips-cordoned", []ZoneStats{{Hosts: 4, Capacity: 24, Cordoned: true}, busy}, 1},
		{"all-cordoned-falls-back", []ZoneStats{
			{Hosts: 4, Committed: 18, Capacity: 24, Busy: 0.9, Cordoned: true},
			{Hosts: 4, Committed: 2, Capacity: 24, Busy: 0.1, Cordoned: true},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PickZone(tc.stats, 2, 0.5, true); got != tc.want {
				t.Fatalf("PickZone = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRouteZone(t *testing.T) {
	cases := []struct {
		name string
		zs   []ZoneRoute
		want int
	}{
		{"empty", nil, -1},
		{"all-cordoned", []ZoneRoute{{Replicas: 2, Cordoned: true}}, -1},
		{"no-replicas", []ZoneRoute{{Replicas: 0, Outstanding: 0}}, -1},
		{"least-mean-outstanding", []ZoneRoute{
			{Replicas: 2, Outstanding: 10}, // mean 5
			{Replicas: 4, Outstanding: 12}, // mean 3
		}, 1},
		// 10/2 == 5/1: exact tie via cross-multiplication → lowest index.
		{"tie-breaks-low-index", []ZoneRoute{
			{Replicas: 2, Outstanding: 10},
			{Replicas: 1, Outstanding: 5},
		}, 0},
		{"fails-over-cordoned", []ZoneRoute{
			{Replicas: 4, Outstanding: 0, Cordoned: true},
			{Replicas: 1, Outstanding: 99},
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RouteZone(tc.zs); got != tc.want {
				t.Fatalf("RouteZone = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestRouteZoneDeterministic: identical queue depths must give an
// identical pick on every call — the JSQ tie-break is positional, not
// random or iteration-order dependent.
func TestRouteZoneDeterministic(t *testing.T) {
	zs := []ZoneRoute{{Replicas: 3, Outstanding: 9}, {Replicas: 3, Outstanding: 9}, {Replicas: 3, Outstanding: 9}}
	for i := 0; i < 100; i++ {
		if got := RouteZone(zs); got != 0 {
			t.Fatalf("call %d: RouteZone = %d, want 0", i, got)
		}
	}
}
