package topology

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

const specAcceptance = "topo:zones=2,hosts=8,pcpus=4; sched:policy=ia,strategy=irs,migrate=on; " +
	"load:arrival=1ms,service=2ms,slo=25ms,duration=12s,drain=2s; " +
	"ramp:1500us@0,1ms@2s,800us@4s; " +
	"tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=500ms; " +
	"outage:zone=1,at=6s,for=1200ms; " +
	"alert:budget=0.02,fast=500ms,slow=2s,burn=3; " +
	"autoscale:max=8,step=2,cooldown=1500ms,down-after=2500ms"

func TestParseLoadSpec(t *testing.T) {
	s, err := ParseLoadSpec(specAcceptance)
	if err != nil {
		t.Fatalf("ParseLoadSpec: %v", err)
	}
	if s.Zones != 2 || s.HostsPerZone != 8 || s.PCPUs != 4 {
		t.Fatalf("topo: %d×%d×%d", s.Zones, s.HostsPerZone, s.PCPUs)
	}
	if s.Policy != "ia" || s.Strategy != "irs" || !s.Migrate {
		t.Fatalf("sched: %+v", s)
	}
	if s.Overcommit != 1.5 { // default applied
		t.Fatalf("overcommit default: %v", s.Overcommit)
	}
	if s.Arrival != sim.Millisecond || s.SLO != 25*sim.Millisecond || s.Duration != 12*sim.Second {
		t.Fatalf("load: %+v", s)
	}
	if len(s.Ramp) != 3 || s.Ramp[0] != (Stage{Arrival: 1500 * sim.Microsecond, At: 0}) ||
		s.Ramp[2] != (Stage{Arrival: 800 * sim.Microsecond, At: 4 * sim.Second}) {
		t.Fatalf("ramp: %+v", s.Ramp)
	}
	if len(s.Outages) != 1 || s.Outages[0] != (OutageSpec{Zone: 1, At: 6 * sim.Second, For: 1200 * sim.Millisecond}) {
		t.Fatalf("outages: %+v", s.Outages)
	}
	if s.Alert == nil || s.Alert.Burn != 3 || s.Alert.Slow != 2*sim.Second {
		t.Fatalf("alert: %+v", s.Alert)
	}
	if s.Autoscale == nil || s.Autoscale.Max != 8 || s.Autoscale.Step != 2 ||
		s.Autoscale.Interval != 250*sim.Millisecond { // default applied
		t.Fatalf("autoscale: %+v", s.Autoscale)
	}
}

func TestParseLoadSpecNewlinesAndComments(t *testing.T) {
	text := `# acceptance rig
topo:zones=2,hosts=4,pcpus=4
sched:policy=ia,strategy=irs # inner interference-aware level
load:arrival=1ms,service=2ms,slo=25ms,duration=4s
outage:zone=0,at=1s,for=500ms
outage:zone=1,at=2s,for=500ms`
	s, err := ParseLoadSpec(text)
	if err != nil {
		t.Fatalf("ParseLoadSpec: %v", err)
	}
	if s.Zones != 2 || len(s.Outages) != 2 || s.Outages[1].Zone != 1 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseLoadSpecDefaults(t *testing.T) {
	s, err := ParseLoadSpec("")
	if err != nil {
		t.Fatalf("empty spec must default-validate: %v", err)
	}
	if s.Zones != 1 || s.HostsPerZone != 4 || s.Policy != "ia" || s.Strategy != "irs" {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Stages() != nil {
		t.Fatalf("flat spec must have no stages")
	}
}

func TestParseLoadSpecErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"bad-section", "bogus:zones=2", "unknown section"},
		{"no-colon", "topo zones=2", "not name:key"},
		{"dup-section", "topo:zones=2,hosts=4; topo:zones=1,hosts=4", "duplicate section"},
		{"unknown-field", "topo:zoness=2", "unknown field"},
		{"dup-field", "topo:zones=2,zones=3", "duplicate field"},
		{"bad-int", "topo:zones=two", "invalid syntax"},
		{"bad-dur", "load:arrival=fast", "time"},
		{"bad-policy", "sched:policy=psychic", "policy"},
		{"bad-strategy", "sched:strategy=magic", "strategy"},
		{"ramp-and-diurnal", "ramp:1ms@0; diurnal:period=2s,swing=0.3", "both ramp and diurnal"},
		{"ramp-not-advancing", "ramp:1ms@1s,2ms@1s", "does not advance"},
		{"ramp-bad-stage", "ramp:1ms", "not arrival@at"},
		{"outage-bad-zone", "topo:zones=2,hosts=4; outage:zone=5,at=1s,for=1s", "outside"},
		{"outage-no-duration", "outage:zone=0,at=1s,for=0s", "for > 0"},
		{"diurnal-swing", "diurnal:period=2s,swing=1.5", "swing"},
		{"autoscale-sans-alert", "autoscale:max=8", "needs an alert"},
		{"autoscale-max-low", "alert:budget=0.02; autoscale:min=4,max=2", "below floor"},
		{"alert-windows", "alert:fast=2s,slow=1s", "incoherent"},
		{"no-servers", "tenants:servers=0,ants=1", "no server VMs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLoadSpec(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestLoadSpecRoundTrip: String() renders a spec ParseLoadSpec reads
// back to an equal value — the property the fuzz target hammers.
func TestLoadSpecRoundTrip(t *testing.T) {
	texts := []string{
		"",
		specAcceptance,
		"topo:zones=3,hosts=2,pcpus=8; diurnal:period=6s,swing=0.4,steps=12; tenants:servers=1,ants=0",
		"sched:policy=first-fit,strategy=vanilla,overcommit=2,migrate=off",
	}
	for _, text := range texts {
		s, err := ParseLoadSpec(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		back, err := ParseLoadSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.String(), err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip drifted:\n  in:  %+v\n  out: %+v\n  via: %s", s, back, s.String())
		}
	}
}

func TestLoadSpecStages(t *testing.T) {
	// Explicit ramp wins verbatim.
	s, err := ParseLoadSpec("ramp:2ms@0,1ms@1s")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stages(); len(st) != 2 || st[1].Arrival != sim.Millisecond {
		t.Fatalf("ramp stages: %+v", st)
	}

	// Diurnal compiles to Duration/step stages oscillating around the
	// base arrival: peak-load stages (sin > 0) have a shorter mean
	// inter-arrival, trough stages a longer one.
	s, err = ParseLoadSpec("load:arrival=1ms,duration=4s; diurnal:period=2s,swing=0.5,steps=4")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stages()
	if len(st) != 8 { // 4s duration / (2s/4 steps)
		t.Fatalf("diurnal stages: %d", len(st))
	}
	if st[0].Arrival != sim.Millisecond {
		t.Fatalf("stage 0 must be the base rate, got %v", st[0].Arrival)
	}
	if st[1].Arrival >= sim.Millisecond || st[3].Arrival <= sim.Millisecond {
		t.Fatalf("diurnal curve inverted: %+v", st[:4])
	}
	// Periodic: stage 4 repeats stage 0.
	if st[4].Arrival != st[0].Arrival {
		t.Fatalf("diurnal not periodic: %v vs %v", st[4].Arrival, st[0].Arrival)
	}
}

func TestLoadSpecTopology(t *testing.T) {
	s, err := ParseLoadSpec("topo:zones=2,hosts=8")
	if err != nil {
		t.Fatal(err)
	}
	topo := s.Topology()
	if topo.Zones() != 2 || topo.Hosts() != 16 {
		t.Fatalf("Topology() = %v", topo)
	}
}
