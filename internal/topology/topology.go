// Package topology models the multi-rack shape of a cluster — hosts
// grouped into zones — and the two cheap zone-level decisions the
// control plane makes from per-zone aggregates: where an arriving VM
// should land (PickZone, the outer level of the two-level placement
// scheduler) and where the next request should be routed (RouteZone,
// the zone selector of the partitioned router). Both work from
// aggregate telemetry only — committed capacity, mean busy fraction,
// mean interference score, outstanding request estimates — so the zone
// level never reads per-host state, mirroring how cloud control planes
// (Arktos-style partitioned API servers) keep the top tier's state
// small enough to scale. The fine-grained, per-host decision stays
// with the inner level: the interference-aware host picker the cluster
// layer already runs, now restricted to the chosen zone.
package topology

import (
	"fmt"
	"sort"
)

// Zone is a named group of hosts, identified by their global indices.
type Zone struct {
	Name  string
	Hosts []int
}

// Topology is an immutable grouping of N hosts into zones. Every host
// index in [0, Hosts) belongs to exactly one zone.
type Topology struct {
	zones  []Zone
	zoneOf []int // host index -> zone index
	hosts  int
}

// New validates and builds a topology from explicit zones. Host
// indices must form exactly the range [0, total) with no duplicates,
// and every zone must be non-empty with a unique name.
func New(zones []Zone) (*Topology, error) {
	if len(zones) == 0 {
		return nil, fmt.Errorf("topology: no zones")
	}
	total := 0
	names := map[string]bool{}
	for _, z := range zones {
		if z.Name == "" {
			return nil, fmt.Errorf("topology: zone with empty name")
		}
		if names[z.Name] {
			return nil, fmt.Errorf("topology: duplicate zone name %q", z.Name)
		}
		names[z.Name] = true
		if len(z.Hosts) == 0 {
			return nil, fmt.Errorf("topology: zone %q has no hosts", z.Name)
		}
		total += len(z.Hosts)
	}
	zoneOf := make([]int, total)
	for i := range zoneOf {
		zoneOf[i] = -1
	}
	for zi, z := range zones {
		for _, h := range z.Hosts {
			if h < 0 || h >= total {
				return nil, fmt.Errorf("topology: zone %q host %d outside [0,%d)", z.Name, h, total)
			}
			if zoneOf[h] != -1 {
				return nil, fmt.Errorf("topology: host %d in both %q and %q", h, zones[zoneOf[h]].Name, z.Name)
			}
			zoneOf[h] = zi
		}
	}
	cp := make([]Zone, len(zones))
	for i, z := range zones {
		hs := append([]int(nil), z.Hosts...)
		sort.Ints(hs)
		cp[i] = Zone{Name: z.Name, Hosts: hs}
	}
	return &Topology{zones: cp, zoneOf: zoneOf, hosts: total}, nil
}

// Uniform builds zones×hostsPerZone hosts grouped contiguously into
// zones named "z0".."zN-1" — the standard multi-rack shape.
func Uniform(zones, hostsPerZone int) *Topology {
	if zones <= 0 || hostsPerZone <= 0 {
		panic(fmt.Sprintf("topology: Uniform(%d, %d) needs positive dimensions", zones, hostsPerZone))
	}
	zs := make([]Zone, zones)
	for i := range zs {
		hosts := make([]int, hostsPerZone)
		for j := range hosts {
			hosts[j] = i*hostsPerZone + j
		}
		zs[i] = Zone{Name: fmt.Sprintf("z%d", i), Hosts: hosts}
	}
	t, err := New(zs)
	if err != nil {
		panic("topology: " + err.Error()) // unreachable: Uniform shapes are always valid
	}
	return t
}

// Flat is the single-zone degenerate: every host in one zone. A
// cluster with a Flat topology behaves byte-identically to one with no
// topology at all.
func Flat(hosts int) *Topology { return Uniform(1, hosts) }

// Zones returns the zone count.
func (t *Topology) Zones() int { return len(t.zones) }

// Zone returns zone i.
func (t *Topology) Zone(i int) Zone { return t.zones[i] }

// ZoneOf returns the zone index of host h.
func (t *Topology) ZoneOf(h int) int { return t.zoneOf[h] }

// Hosts returns the total host count.
func (t *Topology) Hosts() int { return t.hosts }

// String renders the shape, e.g. "2 zones × 8 hosts" for a uniform
// topology or "3 zones / 10 hosts" otherwise.
func (t *Topology) String() string {
	per := len(t.zones[0].Hosts)
	uniform := true
	for _, z := range t.zones[1:] {
		if len(z.Hosts) != per {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%d zones × %d hosts", len(t.zones), per)
	}
	return fmt.Sprintf("%d zones / %d hosts", len(t.zones), t.hosts)
}

// ZoneStats is the cheap aggregate a zone exports to the zone picker —
// sums and means over its hosts' telemetry, refreshed at the same
// cadence as the per-host interference signal. The zone level decides
// from these aggregates alone.
type ZoneStats struct {
	// Hosts is the zone's host count.
	Hosts int
	// Committed and Capacity are summed committed vCPUs and committed-
	// vCPU capacity across the zone's hosts.
	Committed, Capacity int
	// Busy is the mean measured busy fraction across hosts.
	Busy float64
	// Interference is the mean host interference score (weighted
	// steal + preempt-wait fractions plus LHP rate).
	Interference float64
	// Sensitive is the count of resident latency-sensitive VMs.
	Sensitive int
	// Cordoned marks a zone that must receive no placements (outage,
	// drain for maintenance).
	Cordoned bool
}

// scarcity maps projected utilization to contention likelihood: free
// below 50%, certain at saturation. Identical to the host-level curve
// so the two levels agree on what "scarce" means.
func scarcity(u float64) float64 {
	switch {
	case u <= 0.5:
		return 0
	case u >= 1.0:
		return 1
	default:
		return (u - 0.5) / 0.5
	}
}

// zoneOverfullPenalty soft-forbids placing into a zone with no
// committed-vCPU headroom: such a zone is chosen only when every
// candidate is full.
const zoneOverfullPenalty = 1000.0

// ZoneScore estimates how bad placing a VM (vcpus wide, with declared
// pressure, optionally latency-sensitive) into a zone would be. It is
// the zone-granular mirror of the cluster's per-host placement score:
// measured contention hurts a sensitive newcomer, the newcomer's
// pressure hurts resident sensitive VMs only once CPU turns scarce
// (the scarcity gate), a mild committed-load term breaks ties toward
// emptier zones, and exceeding capacity costs a large penalty.
func ZoneScore(z ZoneStats, vcpus int, pressure float64, sensitive bool) float64 {
	if z.Capacity <= 0 || z.Hosts <= 0 {
		return zoneOverfullPenalty * 2
	}
	perHostCap := float64(z.Capacity) / float64(z.Hosts)
	uProj := z.Busy + pressure/(perHostCap*float64(z.Hosts))
	s := 0.05 * float64(z.Committed) / float64(z.Capacity)
	if sensitive {
		s += z.Interference
		if uProj > 0.8 {
			s += 4 * (uProj - 0.8)
		}
	}
	// Harm to residents is normalized per host: a sensitive VM three
	// racks away in the same zone is diluted, not multiplied.
	s += pressure * float64(z.Sensitive) / float64(z.Hosts) * scarcity(uProj)
	if z.Committed+vcpus > z.Capacity {
		s += zoneOverfullPenalty
	}
	return s
}

// PickZone ranks zones for an arriving VM and returns the index of the
// best non-cordoned zone (ties break to the lowest index, keeping
// placement deterministic). When every zone is cordoned it falls back
// to ranking all of them — admission must not wedge on a fully
// cordoned cluster — and returns -1 only for an empty slice.
func PickZone(stats []ZoneStats, vcpus int, pressure float64, sensitive bool) int {
	best, bestScore := -1, 0.0
	for i, z := range stats {
		if z.Cordoned {
			continue
		}
		s := ZoneScore(z, vcpus, pressure, sensitive)
		if best == -1 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best >= 0 {
		return best
	}
	for i, z := range stats {
		s := ZoneScore(z, vcpus, pressure, sensitive)
		if best == -1 || s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// ZoneRoute is the router's per-zone aggregate: how many live server
// replicas the zone holds and their summed outstanding request
// estimate. The partitioned router keeps one of these per zone instead
// of a global replica list, so routing state stays zone-local.
type ZoneRoute struct {
	// Replicas is the count of live (routable) server replicas.
	Replicas int
	// Outstanding is the summed routed-minus-served estimate across
	// those replicas.
	Outstanding int64
	// Cordoned marks a zone the router must fail away from (outage).
	Cordoned bool
}

// RouteZone picks the zone for the next request: the lowest mean
// outstanding work per live replica, skipping cordoned and empty
// zones; ties break to the lowest zone index. The comparison
// cross-multiplies instead of dividing so equal means compare exactly.
// Returns -1 when no zone is routable (the caller buffers).
func RouteZone(zs []ZoneRoute) int {
	best := -1
	var bestOut int64
	var bestRep int
	for i, z := range zs {
		if z.Cordoned || z.Replicas <= 0 {
			continue
		}
		if best == -1 || z.Outstanding*int64(bestRep) < bestOut*int64(z.Replicas) {
			best, bestOut, bestRep = i, z.Outstanding, z.Replicas
		}
	}
	return best
}
