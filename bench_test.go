// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each benchmark regenerates its figure on the
// simulator and reports headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Figures with large matrices run
// one simulated repetition per data point (pass -runs via irsim for
// the averaged version).
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func benchOpts() experiments.Options {
	return experiments.Options{Runs: 1, Seed: 1}
}

// reportCells parses numeric cells of a result table into metrics such
// as the maximum/mean improvement, so benchmark output carries the
// figure's headline numbers.
func reportCells(b *testing.B, tb experiments.Table) {
	b.Helper()
	var vals []float64
	for _, row := range tb.Rows {
		for _, cell := range row {
			s := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
			s = strings.TrimSuffix(s, "ms")
			s = strings.TrimSuffix(s, "s")
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return
	}
	min, max, sum := vals[0], vals[0], 0.0
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	b.ReportMetric(max, "max")
	b.ReportMetric(min, "min")
	b.ReportMetric(sum/float64(len(vals)), "mean")
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	var tb experiments.Table
	for i := 0; i < b.N; i++ {
		var ok bool
		tb, ok = experiments.ByID(id, benchOpts())
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
	reportCells(b, tb)
}

// BenchmarkFig1a regenerates Figure 1(a): slowdown of ua/raytrace/
// fluidanimate under one interfering vCPU.
func BenchmarkFig1a(b *testing.B) { runFigure(b, "fig1a") }

// BenchmarkFig1b regenerates Figure 1(b): the process-migration latency
// staircase (≈ one 30 ms scheduling delay per co-located VM).
func BenchmarkFig1b(b *testing.B) { runFigure(b, "fig1b") }

// BenchmarkFig2 regenerates Figure 2: CPU utilization relative to fair
// share for blocking workloads under interference.
func BenchmarkFig2(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig5 regenerates Figure 5: PARSEC (blocking) improvement
// matrix for PLE / relaxed-co / IRS at 1/2/4-inter × 3 interference
// sources.
func BenchmarkFig5(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: NPB (spinning) improvement matrix.
func BenchmarkFig6(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: weighted speedup of consolidated
// PARSEC pairs.
func BenchmarkFig7(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: server throughput and latency
// improvement under IRS.
func BenchmarkFig8(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: weighted speedup of consolidated
// NPB pairs.
func BenchmarkFig9(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: IRS improvement vs number of
// interfered vCPUs on 8-vCPU VMs.
func BenchmarkFig10(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: IRS improvement vs number of
// stacked interfering VMs.
func BenchmarkFig11(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: NPB under CPU stacking
// (unpinned vCPUs).
func BenchmarkFig12(b *testing.B) { runFigure(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: PARSEC under CPU stacking
// (deceptive idleness).
func BenchmarkFig13(b *testing.B) { runFigure(b, "fig13") }

// BenchmarkSADelay regenerates the §3.1 micro-measurement: the 20-26 µs
// scheduler-activation processing delay.
func BenchmarkSADelay(b *testing.B) { runFigure(b, "sadelay") }

// BenchmarkAblationIRSPull compares push-based IRS with the §6
// pull-based extension.
func BenchmarkAblationIRSPull(b *testing.B) { runFigure(b, "ab-pull") }

// BenchmarkAblationSALimit sweeps the SA hard limit.
func BenchmarkAblationSALimit(b *testing.B) { runFigure(b, "ab-salimit") }

// BenchmarkAblationTicketLock shows LWP amplification by FIFO ticket
// locks versus TAS spinlocks.
func BenchmarkAblationTicketLock(b *testing.B) { runFigure(b, "ab-ticket") }

// BenchmarkAblationSpinBlock sweeps the blocking primitives' pre-sleep
// spin budget against PLE.
func BenchmarkAblationSpinBlock(b *testing.B) { runFigure(b, "ab-spinblock") }

// BenchmarkAblationStrictCo contrasts ESX 2.x strict co-scheduling with
// vanilla and IRS (gang slots vs CPU fragmentation).
func BenchmarkAblationStrictCo(b *testing.B) { runFigure(b, "ab-strictco") }

// BenchmarkObsCounters regenerates the telemetry-counter table: the
// registry-measured steal times, preemption-wait percentiles, SA round
// trips, and LHP/LWP counts behind the §5 end-to-end numbers.
func BenchmarkObsCounters(b *testing.B) { runFigure(b, "obs") }

// BenchmarkChaos regenerates the robustness sweep: vIRQ/hypercall
// fault rates vs every strategy, with per-run invariant audits.
func BenchmarkChaos(b *testing.B) { runFigure(b, "chaos") }
