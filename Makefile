# Development entry points. `make check` is the full verification
# recipe: build everything, vet, and run the test suite under the race
# detector.

GO ?= go

.PHONY: check build vet test race bench report

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's evaluation via the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem

# Telemetry smoke run: summary + all three exports for vanilla vs IRS.
report:
	$(GO) run ./cmd/irsreport -bench streamcluster -strategy vanilla,irs -inter 1
