# Development entry points. `make check` is the full verification
# recipe: build everything, vet, and run the test suite under the race
# detector.

GO ?= go

# Committed benchmark baseline for the regression gate (see
# cmd/benchjson and DESIGN.md §9).
BENCH_SNAPSHOT ?= BENCH_3.json

.PHONY: check build vet test race bench bench-compare report fuzz-smoke chaos

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The expensive experiments.All determinism sweep skips under -short;
# the race job still covers the per-figure determinism subtests.
race:
	$(GO) test -race -short ./...

# Benchmark snapshot: the per-figure evaluation benchmarks (root
# package) plus the engine microbenchmarks, captured as JSON for the
# regression gate.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_SNAPSHOT) < bench.out
	@rm -f bench.out

# Regression gate: measure a fresh snapshot and compare it against the
# committed baseline with a ±15% tolerance. allocs/op is gated on every
# host; ns/op only when the host metadata matches the baseline's.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem ./... > bench.new.out || { cat bench.new.out; rm -f bench.new.out; exit 1; }
	@cat bench.new.out
	$(GO) run ./cmd/benchjson -o bench.new.json < bench.new.out
	$(GO) run ./cmd/benchjson -compare $(BENCH_SNAPSHOT) bench.new.json -tolerance 0.15
	@rm -f bench.new.out bench.new.json

# Telemetry smoke run: summary + all three exports for vanilla vs IRS.
report:
	$(GO) run ./cmd/irsreport -bench streamcluster -strategy vanilla,irs -inter 1

# Short fuzz pass over the committed seed corpora plus a few seconds of
# fresh exploration per target.
fuzz-smoke:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEventHeapOrdering -fuzztime 5s
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzParsePlan -fuzztime 5s

# Robustness sweep: fault rates vs strategies with invariant audits.
chaos:
	$(GO) run ./cmd/irsim -runs 1 chaos
