# Development entry points. `make check` is the full verification
# recipe: build everything, vet, and run the test suite under the race
# detector.

GO ?= go

# Committed benchmark baseline for the regression gate (see
# cmd/benchjson and DESIGN.md §9). BENCH_6 adds the decision-log
# paired benchmarks (hot path with/without auditing, DESIGN.md §16).
BENCH_SNAPSHOT ?= BENCH_6.json

.PHONY: check build vet test race bench bench-compare report fuzz-smoke chaos examples cover blame watch attack scale scale-sweep why

check: build vet race examples blame watch attack scale scale-sweep why

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The expensive experiments.All determinism sweep skips under -short;
# the race job still covers the per-figure determinism subtests.
race:
	$(GO) test -race -short ./...

# Benchmark snapshot: the per-figure evaluation benchmarks (root
# package) plus the engine microbenchmarks, captured as JSON for the
# regression gate.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_SNAPSHOT) < bench.out
	@rm -f bench.out

# Regression gate: measure a fresh snapshot and compare it against the
# committed baseline with a ±15% tolerance. allocs/op is gated on every
# host; ns/op only when the host metadata matches the baseline's.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem ./... > bench.new.out || { cat bench.new.out; rm -f bench.new.out; exit 1; }
	@cat bench.new.out
	$(GO) run ./cmd/benchjson -o bench.new.json < bench.new.out
	$(GO) run ./cmd/benchjson -compare -tolerance 0.15 $(BENCH_SNAPSHOT) bench.new.json
	@rm -f bench.new.out bench.new.json

# Latency blame attribution smoke run: per-strategy p50/p99/p99.9
# category breakdowns plus the slowest requests' critical paths.
blame:
	$(GO) run ./cmd/irsblame -strategy vanilla,irs -duration 500ms -top 3

# Online SLO watchdog smoke run: the bully rig must page within one
# slow window and attribution must rank the bully first. The incident
# bundle (JSON + Perfetto trace) lands next to the repo root.
watch:
	$(GO) run ./cmd/irswatch -scenario bully -expect-top bully -dump incident

# Telemetry smoke run: summary + all three exports for vanilla vs IRS.
report:
	$(GO) run ./cmd/irsreport -bench streamcluster -strategy vanilla,irs -inter 1

# Short fuzz pass over the committed seed corpora plus a few seconds of
# fresh exploration per target.
fuzz-smoke:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEventHeapOrdering -fuzztime 5s
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzParsePlan -fuzztime 5s
	$(GO) test ./internal/watch -run '^$$' -fuzz FuzzParseRule -fuzztime 5s
	$(GO) test ./internal/workload -run '^$$' -fuzz FuzzParseAttack -fuzztime 5s
	$(GO) test ./internal/topology -run '^$$' -fuzz FuzzParseLoadSpec -fuzztime 5s
	$(GO) test ./internal/decision -run '^$$' -fuzz FuzzParseQuery -fuzztime 5s

# Adversarial-tenant smoke run: the tick-evader vs every accounting
# defense; the gate fails unless jittered ticks + exact accounting
# together hold the attacker within 5% of its fair share.
attack:
	$(GO) run ./cmd/irsim -attack tick-evade -expect-overshoot 1.05

# Robustness sweep: fault rates vs strategies with invariant audits.
chaos:
	$(GO) run ./cmd/irsim -runs 1 chaos

# Sharded-simulation gate: the per-host engine pool must be data-race
# free and byte-identical to the serial coordinator at every shard
# width (DESIGN.md §14).
scale:
	$(GO) test -race ./internal/sim ./internal/cluster
	$(GO) test ./internal/experiments -run TestShardedMatchesSerial

# Multi-rack control-plane smoke run: the 2-zone × 8-host acceptance
# rig with a zone outage mid-ramp. The gate fails unless the router
# fails over, every request is conserved, the invariants stay clean,
# and the post-recovery SLO-violation rate is below 1%.
scale-sweep:
	$(GO) run ./cmd/irsload -variant 2z8h-outage -expect 1.0

# Decision-provenance smoke run: replay the outage rig with the audit
# log attached and gate on the exact decision trail (cordon, the first
# failover route, +2 replicas, then the two drains). The full log lands
# next to the repo root as decisions.json.
why:
	$(GO) run ./cmd/irswhy -expect cordon,failover,scale-up,scale-up,drain,drain -json decisions.json

# Compile and run every example end to end (each also has a unit test
# exercising its run() body, picked up by `make test`).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/server
	$(GO) run ./examples/parsec
	$(GO) run ./examples/stacking

# Coverage gate: statement coverage over internal/ must stay at or
# above COVER_MIN (baseline measured at ~91%).
COVER_MIN ?= 85.0

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/... ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	 rm -f cover.out; \
	 awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
	   if (t+0 < min+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, min; exit 1 } \
	   printf "OK: coverage %.1f%% >= floor %.1f%%\n", t, min }'
