# Development entry points. `make check` is the full verification
# recipe: build everything, vet, and run the test suite under the race
# detector.

GO ?= go

.PHONY: check build vet test race bench report fuzz-smoke chaos

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's evaluation via the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem

# Telemetry smoke run: summary + all three exports for vanilla vs IRS.
report:
	$(GO) run ./cmd/irsreport -bench streamcluster -strategy vanilla,irs -inter 1

# Short fuzz pass over the committed seed corpora plus a few seconds of
# fresh exploration per target.
fuzz-smoke:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEventHeapOrdering -fuzztime 5s
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzParsePlan -fuzztime 5s

# Robustness sweep: fault rates vs strategies with invariant audits.
chaos:
	$(GO) run ./cmd/irsim -runs 1 chaos
