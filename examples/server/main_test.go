package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestServerExampleRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"specjbb", "ab", "throughput=", "p99="} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
