// Server: latency-sensitive workloads under interference (§5.3).
//
// Runs a SPECjbb-style warehouse server (4 threads, one per vCPU) and
// an ab-style webserver (64 short-request threads) against CPU-hog
// interference, vanilla vs IRS, and reports throughput plus mean and
// tail latency. Multi-threaded servers have little synchronization, so
// the win comes purely from migrating the running thread off preempted
// vCPUs — which mostly shows up in latency.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	jbb := workload.ServerSpec{
		Name:      "specjbb",
		Threads:   4,
		Service:   3 * sim.Millisecond,
		LockEvery: 25,
		LockCS:    100 * sim.Microsecond,
		Duration:  6 * sim.Second,
	}
	ab := workload.ServerSpec{
		Name:     "ab",
		Threads:  64,
		Service:  1500 * sim.Microsecond,
		Duration: 6 * sim.Second,
	}

	for _, spec := range []workload.ServerSpec{jbb, ab} {
		fmt.Fprintf(w, "== %s (%d threads, %v mean service) ==\n", spec.Name, spec.Threads, spec.Service)
		for _, inter := range []int{2, 4} {
			for _, strat := range []core.Strategy{core.StrategyVanilla, core.StrategyIRS} {
				vmSpec, statsPtr := core.ServerVM("fg", spec, 4, core.SeqPins(0, 4))
				vmSpec.IRS = strat == core.StrategyIRS
				_, err := core.Run(core.Scenario{
					PCPUs:    4,
					Strategy: strat,
					Seed:     3,
					VMs: []core.VMSpec{
						vmSpec,
						core.HogVM("bg", inter, core.SeqPins(0, inter)),
					},
				})
				if err != nil {
					return fmt.Errorf("%s: %w", spec.Name, err)
				}
				st := *statsPtr
				fmt.Fprintf(w, "  %d-inter %-8s throughput=%7.0f req/s  mean=%-9v p99=%v\n",
					inter, strat, st.Throughput(), st.Latency.Mean(), st.Latency.Percentile(99))
			}
		}
	}
	return nil
}
