// Parsec: an interference study across synchronization structures.
//
// Runs four PARSEC-style benchmarks with different synchronization
// (barrier-coarse, barrier-fine, mutex point-to-point, user-level work
// stealing) against 1 and 2 interfering CPU hogs, under all four
// scheduling strategies, and prints runtimes plus IRS improvement.
// This reproduces the qualitative structure of Figure 5 on a small
// scale: barrier-heavy programs benefit most from IRS, work stealing
// needs no help.
//
//	go run ./examples/parsec
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	benchNames := []string{"blackscholes", "streamcluster", "x264", "raytrace"}
	levels := []int{1, 2}

	for _, name := range benchNames {
		bench, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("%s not in catalog", name)
		}
		fmt.Fprintf(w, "== %s ==\n", name)
		for _, lvl := range levels {
			fmt.Fprintf(w, "  %d-inter:", lvl)
			var vanilla float64
			for _, strat := range core.Strategies() {
				fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
				fg.IRS = strat == core.StrategyIRS
				res, err := core.Run(core.Scenario{
					PCPUs:    4,
					Strategy: strat,
					Seed:     7,
					VMs: []core.VMSpec{
						fg,
						core.HogVM("bg", lvl, core.SeqPins(0, lvl)),
					},
				})
				if err != nil {
					return fmt.Errorf("%s %s: %w", name, strat, err)
				}
				rt := res.VM("fg").Runtime.Seconds()
				if strat == core.StrategyVanilla {
					vanilla = rt
				}
				fmt.Fprintf(w, "  %s=%.2fs", strat, rt)
				if strat == core.StrategyIRS && vanilla > 0 {
					fmt.Fprintf(w, " (%+.0f%%)", (vanilla-rt)/vanilla*100)
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
