package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParsecExampleRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"== blackscholes ==", "== raytrace ==", "1-inter:", "2-inter:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
