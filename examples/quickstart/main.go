// Quickstart: build a tiny consolidation scenario and compare vanilla
// scheduling against IRS.
//
// A 4-vCPU VM runs a barrier-synchronized parallel program (like
// PARSEC streamcluster) pinned one-vCPU-per-pCPU, while a CPU-hog VM
// interferes on pCPU 0 — the paper's standard rig (§5.1). The program
// suffers lock-holder/lock-waiter preemption under vanilla scheduling;
// IRS's scheduler activations let the guest migrate the critical
// thread off the preempted vCPU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	bench, ok := workload.ByName("streamcluster")
	if !ok {
		return fmt.Errorf("streamcluster not in the catalog")
	}

	runtimes := map[core.Strategy]float64{}
	for _, strat := range []core.Strategy{core.StrategyVanilla, core.StrategyIRS} {
		fg := core.BenchmarkVM("fg", bench, 0 /* native blocking */, 4, core.SeqPins(0, 4))
		fg.IRS = strat == core.StrategyIRS // the guest implements VIRQ_SA_UPCALL

		scn := core.Scenario{
			PCPUs:    4,
			Strategy: strat,
			Seed:     42,
			VMs: []core.VMSpec{
				fg,
				core.HogVM("interferer", 1, core.SeqPins(0, 1)),
			},
		}
		res, err := core.Run(scn)
		if err != nil {
			return fmt.Errorf("%s: %w", strat, err)
		}
		vr := res.VM("fg")
		runtimes[strat] = vr.Runtime.Seconds()
		fmt.Fprintf(w, "%-10s runtime=%-8v LHP=%-4d task-migrations=%-5d SA=%d acked=%d (mean %v)\n",
			strat, vr.Runtime, vr.LHP, vr.TaskMigrations, res.SASent, res.SAAcked, res.SAMeanDelay)
	}

	imp := (runtimes[core.StrategyVanilla] - runtimes[core.StrategyIRS]) /
		runtimes[core.StrategyVanilla] * 100
	fmt.Fprintf(w, "\nIRS improvement over vanilla Xen/Linux: %.1f%% (paper: up to 42%% for PARSEC)\n", imp)
	return nil
}
