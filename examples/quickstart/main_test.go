package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"vanilla", "irs", "IRS improvement over vanilla"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
