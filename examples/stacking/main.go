// Stacking: the CPU-stacking pathology of §5.6.
//
// When all vCPUs are unpinned, the hypervisor's VM-oblivious balancer
// can place sibling vCPUs on the same pCPU. Blocking workloads are
// especially vulnerable: sleeping waiters look idle (deceptive
// idleness), so the balancer herds them onto one "least loaded" pCPU,
// and a whole barrier generation then executes serially. This example
// measures a spinning (MG) and a blocking (streamcluster) workload
// pinned vs unpinned, then shows how much of the stacking penalty each
// strategy recovers.
//
//	go run ./examples/stacking
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cases := []struct {
		name string
		mode workload.SyncMode
	}{
		{"MG", workload.SyncSpinning},
		{"streamcluster", 0},
	}
	for _, c := range cases {
		bench, ok := workload.ByName(c.name)
		if !ok {
			return fmt.Errorf("%s not in catalog", c.name)
		}
		pinned, err := measure(bench, c.mode, core.StrategyVanilla, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s (4 hogs) ==\n  pinned vanilla: %.2fs\n", c.name, pinned)
		for _, strat := range core.Strategies() {
			rt, err := measure(bench, c.mode, strat, true)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  unpinned %-10s: %.2fs (stacking penalty %.2fx)\n", strat, rt, rt/pinned)
		}
	}
	return nil
}

func measure(bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy, unpinned bool) (float64, error) {
	var fgPins, bgPins []int
	if !unpinned {
		fgPins = core.SeqPins(0, 4)
		bgPins = core.SeqPins(0, 4)
	}
	fg := core.BenchmarkVM("fg", bench, mode, 4, fgPins)
	fg.IRS = strat == core.StrategyIRS
	res, err := core.Run(core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     11,
		Unpinned: unpinned,
		Horizon:  1800 * sim.Second,
		VMs: []core.VMSpec{
			fg,
			core.HogVM("bg", 4, bgPins),
		},
	})
	if err != nil {
		return 0, fmt.Errorf("%s %v: %w", bench.Name, strat, err)
	}
	return res.VM("fg").Runtime.Seconds(), nil
}
