package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestStackingExampleRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"== MG (4 hogs) ==", "== streamcluster (4 hogs) ==", "stacking penalty"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
